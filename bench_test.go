package stringfigure_test

// Benchmark harness: one benchmark per table/figure of the paper's
// evaluation (Section VI). Each benchmark regenerates its artifact through
// internal/experiments and reports the headline numbers as custom metrics,
// so `go test -bench=. -benchmem` reproduces the paper end to end. The
// experiments use reduced-but-representative scales so the full suite
// finishes in minutes; cmd/sfexp runs the full-scale versions, and
// EXPERIMENTS.md records a complete run. External test package (dot-
// imported): the experiments layer consumes the public API.

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	. "repro"
	"repro/internal/experiments"
	"repro/internal/netsim"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// BenchmarkFig5_PathLengthComparison regenerates Figure 5: average shortest
// path length of Jellyfish, S2 and String Figure random topologies. The
// headline metric is the SF mean path length at the largest scale.
func BenchmarkFig5_PathLengthComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, err := experiments.Fig5([]int{100, 200, 400}, 2, 64)
		if err != nil {
			b.Fatal(err)
		}
		last := s.Rows[len(s.Rows)-1]
		b.ReportMetric(last[3], "sf_hops@400")
		b.ReportMetric(last[1], "jellyfish_hops@400")
	}
}

// BenchmarkFig9a_HopCounts regenerates Figure 9(a): average hop count of
// every design as the network scales, plus SF's P10/P90.
func BenchmarkFig9a_HopCounts(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, err := experiments.Fig9a([]int{64, 256, 1024}, 64, 1)
		if err != nil {
			b.Fatal(err)
		}
		last := s.Rows[len(s.Rows)-1]
		b.ReportMetric(last[1], "dm_hops@1024")
		b.ReportMetric(last[6], "sf_hops@1024")
		b.ReportMetric(last[8], "sf_p90@1024")
	}
}

// BenchmarkFig9b_PowerGatingEDP regenerates Figure 9(b): normalized EDP as
// a fraction of the network is power-gated off.
func BenchmarkFig9b_PowerGatingEDP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, err := experiments.Fig9b(64, []string{"grep"}, []float64{0, 0.25}, 800, 1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(s.Rows[1][1], "edp_gated25pct_vs_full")
	}
}

// BenchmarkFig10_Saturation regenerates Figure 10: saturation injection
// rates across designs under uniform random traffic.
func BenchmarkFig10_Saturation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		series, err := experiments.Fig10([]int{64}, []string{"uniform"},
			experiments.QuickSimScale(), 1)
		if err != nil {
			b.Fatal(err)
		}
		row := series[0].Rows[0]
		b.ReportMetric(row[1], "dm_sat_pct@64")
		b.ReportMetric(row[6], "sf_sat_pct@64")
	}
}

// BenchmarkFig10_SaturationHotspotTornado covers the remaining Figure 10
// panels (hotspot and tornado traffic).
func BenchmarkFig10_SaturationHotspotTornado(b *testing.B) {
	for i := 0; i < b.N; i++ {
		series, err := experiments.Fig10([]int{64}, []string{"hotspot", "tornado"},
			experiments.QuickSimScale(), 1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(series[0].Rows[0][6], "sf_hotspot_sat_pct")
		b.ReportMetric(series[1].Rows[0][6], "sf_tornado_sat_pct")
	}
}

// BenchmarkFig11_LatencyCurves regenerates Figure 11: latency versus
// injection rate per design.
func BenchmarkFig11_LatencyCurves(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, err := experiments.Fig11(64, "uniform", []float64{0.05, 0.20, 0.40},
			experiments.QuickSimScale(), 1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(s.Rows[0][6], "sf_ns@5pct")
		b.ReportMetric(s.Rows[2][6], "sf_ns@40pct")
	}
}

// BenchmarkFig12a_WorkloadThroughput regenerates Figure 12(a): normalized
// workload throughput versus DM, on a representative workload subset.
func BenchmarkFig12a_WorkloadThroughput(b *testing.B) {
	wc := experiments.WorkloadConfig{
		N: 64, Ops: 1200, Sockets: 4, Window: 16, Threads: 4,
		MaxCycles: 20_000_000, Seed: 1,
	}
	for i := 0; i < b.N; i++ {
		t, _, err := experiments.Fig12([]string{"grep", "redis"}, wc)
		if err != nil {
			b.Fatal(err)
		}
		geo := t.Rows[len(t.Rows)-1]
		b.ReportMetric(geo[3], "sf_vs_dm_geomean")
	}
}

// BenchmarkFig12b_WorkloadEnergy regenerates Figure 12(b): normalized
// dynamic memory energy versus AFB.
func BenchmarkFig12b_WorkloadEnergy(b *testing.B) {
	wc := experiments.WorkloadConfig{
		N: 64, Ops: 1200, Sockets: 4, Window: 16, Threads: 4,
		MaxCycles: 20_000_000, Seed: 1,
	}
	for i := 0; i < b.N; i++ {
		_, e, err := experiments.Fig12([]string{"grep", "redis"}, wc)
		if err != nil {
			b.Fatal(err)
		}
		geo := e.Rows[len(e.Rows)-1]
		b.ReportMetric(geo[3], "sf_vs_afb_geomean")
	}
}

// BenchmarkTable2_PortCounts regenerates Table II / Figure 8: router port
// requirements per design and scale.
func BenchmarkTable2_PortCounts(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, err := experiments.Table2([]int{256, 1024})
		if err != nil {
			b.Fatal(err)
		}
		for r, label := range s.Labels {
			if label == "fb" {
				b.ReportMetric(s.Rows[r][4], "fb_ports@1024")
			}
			if label == "sf" {
				b.ReportMetric(s.Rows[r][4], "sf_ports@1024")
			}
		}
	}
}

// BenchmarkBisection regenerates the Section V bisection-bandwidth
// methodology (random cuts + max-flow).
func BenchmarkBisection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, err := experiments.Bisection([]int{64}, 8, 1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(s.Rows[0][2], "sf_bisection@64")
		b.ReportMetric(s.Rows[0][4], "odm_width@64")
	}
}

// BenchmarkAblationUniBidi measures the Section IV uni- vs bi-directional
// sensitivity study.
func BenchmarkAblationUniBidi(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, err := experiments.AblationUniBidi([]int{64}, experiments.QuickSimScale(), 1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(s.Rows[0][1], "uni_path@64")
		b.ReportMetric(s.Rows[0][2], "bidi_path@64")
	}
}

// BenchmarkAblationLookahead measures the value of two-hop routing tables.
func BenchmarkAblationLookahead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, err := experiments.AblationLookahead([]int{128}, 1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(s.Rows[0][1], "greedy_1hop@128")
		b.ReportMetric(s.Rows[0][2], "greedy_2hop@128")
		b.ReportMetric(s.Rows[0][3], "bfs_optimal@128")
	}
}

// BenchmarkAblationShortcuts measures shortcut healing after down-scaling.
func BenchmarkAblationShortcuts(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, err := experiments.AblationShortcuts(128, []float64{0.3}, 1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(s.Rows[0][2], "sf_connected_pct")
		b.ReportMetric(s.Rows[0][4], "unhealed_connected_pct")
	}
}

// BenchmarkTopologyGeneration measures raw topology construction cost at
// the paper's maximum scale (1296 nodes).
func BenchmarkTopologyGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sf, err := topology.NewPaperSF(1296, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		_ = sf.Graph()
	}
}

// BenchmarkGreedyRouting measures per-route decision cost on a 1296-node
// network (the compute side of the compute+table hybrid).
func BenchmarkGreedyRouting(b *testing.B) {
	net, err := New(WithNodes(1296), WithSeed(1))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := i % 1296
		dst := (i*733 + 17) % 1296
		if src == dst {
			continue
		}
		if _, err := net.Route(src, dst); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReconfiguration measures one gate-off/gate-on cycle including
// table updates on a 1296-node network.
func BenchmarkReconfiguration(b *testing.B) {
	net, err := New(WithNodes(1296), WithSeed(1))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := 1 + i%1294
		if err := net.GateOff(v); err != nil {
			b.Fatal(err)
		}
		if err := net.GateOn(v); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulatorCycles measures raw simulator throughput
// (router-cycles per second) at 256 nodes under uniform load.
func BenchmarkSimulatorCycles(b *testing.B) {
	net, err := New(WithNodes(256), WithSeed(1))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := net.SimulateUniform(0.2, 200, 800)
		if err != nil {
			b.Fatal(err)
		}
		if res.Deadlocked {
			b.Fatal("deadlock")
		}
	}
}

// sweepBenchPoints is the 8-point injection-rate grid shared by the sweep
// benchmarks below: compare BenchmarkSweepSerial against
// BenchmarkSweepParallel at -cpu 4 to see the worker-pool speedup (the
// parallel sweep is the same deterministic per-point computation fanned
// over GOMAXPROCS goroutines). Both report points/s; the parallel
// benchmark additionally measures a serial reference pass and reports
// the end-to-end speedup as a metric.
func sweepBenchPoints() []Point {
	return RateSweep(SyntheticWorkload{Pattern: "uniform"},
		[]float64{0.04, 0.08, 0.12, 0.16, 0.20, 0.24, 0.28, 0.32})
}

var sweepBenchCfg = SessionConfig{Warmup: 500, Measure: 2000, Seed: 1}

// sweepBenchSerialPass runs the serial reference loop once: the same
// per-point sessions and seeds as Sweep, one at a time.
func sweepBenchSerialPass(b *testing.B, net *Network, points []Point) {
	b.Helper()
	for j, p := range points {
		cfg := sweepBenchCfg
		cfg.Seed = PointSeed(sweepBenchCfg.Seed, j)
		cfg.Rate = p.Rate
		res, err := net.NewSession(cfg).Run(p.Workload)
		if err != nil {
			b.Fatal(err)
		}
		if res.Deadlocked {
			b.Fatal("deadlock")
		}
	}
}

// BenchmarkSweepSerial is the serial reference loop.
func BenchmarkSweepSerial(b *testing.B) {
	net, err := New(WithNodes(64), WithSeed(1))
	if err != nil {
		b.Fatal(err)
	}
	points := sweepBenchPoints()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sweepBenchSerialPass(b, net, points)
	}
	b.ReportMetric(float64(len(points)*b.N)/b.Elapsed().Seconds(), "points/s")
}

// BenchmarkSweepParallel fans the same 8 points across GOMAXPROCS workers
// through the public Sweep API and reports the speedup over a serial
// reference pass measured in the same process. On a single-CPU host the
// comparison is meaningless (the pool degenerates to the serial loop), so
// it skips rather than report a misleading ~1.0x.
func BenchmarkSweepParallel(b *testing.B) {
	if runtime.GOMAXPROCS(0) == 1 {
		b.Skip("parallel sweep speedup needs GOMAXPROCS > 1 (run with -cpu 4)")
	}
	net, err := New(WithNodes(64), WithSeed(1))
	if err != nil {
		b.Fatal(err)
	}
	points := sweepBenchPoints()
	// Untimed serial baseline for the speedup metric.
	serialStart := time.Now()
	sweepBenchSerialPass(b, net, points)
	serialSec := time.Since(serialStart).Seconds()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, res := range net.SweepAll(sweepBenchCfg, points, 0) {
			if res.Err != nil {
				b.Fatal(res.Err)
			}
			if res.Deadlocked {
				b.Fatal("deadlock")
			}
		}
	}
	parallelSec := b.Elapsed().Seconds() / float64(b.N)
	b.ReportMetric(float64(len(points)*b.N)/b.Elapsed().Seconds(), "points/s")
	if parallelSec > 0 {
		b.ReportMetric(serialSec/parallelSec, "speedup")
	}
}

// netsimStepBench drives the raw simulator one cycle per benchmark op on a
// String Figure network of n nodes at the given injection rate. Warmup fills
// the network to its steady state (queues at their high-water marks, the
// packet pool primed, flow histograms at their latency high-water), after
// which the core must run without heap allocations — allocs/op is reported
// and gated at 0 by bench_baseline.json, and cycles/s is the
// perf-trajectory headline. flowBuckets > 0 enables per-flow accounting
// (the BenchmarkNetsimStepFlow variant), pinning the accounting-on
// overhead next to the observability-off ceiling.
func netsimStepBench(b *testing.B, n int, rate float64, reference bool, flowBuckets int) {
	b.Helper()
	sf, err := topology.NewStringFigure(topology.Config{N: n, Ports: 4, Seed: 1, Shortcuts: true})
	if err != nil {
		b.Fatal(err)
	}
	cfg := netsim.SFConfig(sf, 1)
	cfg.ReferenceCore = reference
	cfg.FlowBuckets = flowBuckets
	sim, err := netsim.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	pat, err := traffic.NewPattern("uniform", n)
	if err != nil {
		b.Fatal(err)
	}
	sim.SetPattern(rate, pat)
	sim.Run(3000)
	if sim.Results().Deadlocked {
		b.Fatal("deadlocked during warmup")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Run(1)
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "cycles/s")
	if sim.Results().Deadlocked {
		b.Fatal("deadlocked during measurement")
	}
}

// netsimStepGrid is the benchmark load matrix. Rates are fixed fractions of
// each size's measured saturation rate (N=64: 0.025, N=256: 0.012, N=1024:
// 0.006 flits/node/cycle under uniform traffic): "low" is 5% of saturation —
// the flat region of the latency-load curve, where the event core's
// idle-router skipping dominates — and "mid" is 40%, below the knee but with
// most routers busy most cycles. Both reach a stable in-flight population,
// which allocs/op needs to be meaningful (an ever-growing source-queue
// backlog allocates forever on any core).
var netsimStepGrid = []struct {
	n    int
	load string
	rate float64
}{
	{64, "low", 0.00125}, {64, "mid", 0.01},
	{256, "low", 0.0006}, {256, "mid", 0.005},
	{1024, "low", 0.0003}, {1024, "mid", 0.0025},
}

// BenchmarkNetsimStep is the netsim hot-loop benchmark grid: cycles/s and
// allocs/op at N=64/256/1024 under low and mid uniform load. These are the
// numbers the event-driven core rewrite targets; benchgate holds cycles/s
// above the bench_baseline.json floors and allocs/op at 0.
func BenchmarkNetsimStep(b *testing.B) {
	for _, g := range netsimStepGrid {
		b.Run(fmt.Sprintf("N%d_%s", g.n, g.load), func(b *testing.B) {
			netsimStepBench(b, g.n, g.rate, false, 0)
		})
	}
}

// BenchmarkNetsimStepFlow is the N=64 mid-load grid point with per-flow
// accounting enabled (4×4 src/dst buckets, the sfexp default): the delta
// against NetsimStep/N64_mid is the observability overhead, and the
// allocs/op ceiling pins the accounting path allocation-free in steady
// state — the flow histograms live in a pre-carved arena that reaches its
// latency high-water mark during warmup.
func BenchmarkNetsimStepFlow(b *testing.B) {
	b.Run("N64_mid", func(b *testing.B) {
		netsimStepBench(b, 64, 0.01, false, 4)
	})
}

// BenchmarkNetsimStepScenario is the N=64 mid-load grid point with a rate
// schedule armed: every 1024 cycles the injection rate re-sets, alternating
// ±25% around the grid rate — the way a compiled diurnal or bursty scenario
// drives the core between Run slices. SetRate only restarts the geometric
// skip-sampling trial, so the scheduled path must hold the same 0 allocs/op
// ceiling as the unscheduled core; the cycles/s delta against
// NetsimStep/N64_mid is the cost of arming a scenario at all.
func BenchmarkNetsimStepScenario(b *testing.B) {
	b.Run("N64_mid", func(b *testing.B) {
		const n, rate = 64, 0.01
		sf, err := topology.NewStringFigure(topology.Config{N: n, Ports: 4, Seed: 1, Shortcuts: true})
		if err != nil {
			b.Fatal(err)
		}
		sim, err := netsim.New(netsim.SFConfig(sf, 1))
		if err != nil {
			b.Fatal(err)
		}
		pat, err := traffic.NewPattern("uniform", n)
		if err != nil {
			b.Fatal(err)
		}
		sim.SetPattern(rate, pat)
		sim.Run(3000)
		if sim.Results().Deadlocked {
			b.Fatal("deadlocked during warmup")
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if i%1024 == 0 {
				if i%2048 == 0 {
					sim.SetRate(rate * 0.75)
				} else {
					sim.SetRate(rate * 1.25)
				}
			}
			sim.Run(1)
		}
		b.StopTimer()
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "cycles/s")
		if sim.Results().Deadlocked {
			b.Fatal("deadlocked during measurement")
		}
	})
}

// BenchmarkNetsimStepRef runs the same N=1024 low-load point on the
// reference full-scan core: the ratio of NetsimStep/N1024_low to this
// number is the event-scheduling speedup (same injection scheme, same
// memory layout, full per-router scan instead of worklists) recorded in
// every BENCH_*.json. The pre-PR core was slower still — it also paid
// per-node injection draws and per-cycle allocations.
func BenchmarkNetsimStepRef(b *testing.B) {
	b.Run("N1024_low", func(b *testing.B) {
		netsimStepBench(b, 1024, 0.0003, true, 0)
	})
}

// BenchmarkTraceSession measures one closed-loop Figure 12 co-simulation
// through the public API (trace synthesis + DRAM-timed replay).
func BenchmarkTraceSession(b *testing.B) {
	net, err := New(WithNodes(64), WithSeed(1))
	if err != nil {
		b.Fatal(err)
	}
	cfg := SessionConfig{Ops: 800, Sockets: 2, Window: 8, Threads: 4,
		MaxCycles: 20_000_000, Seed: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := net.NewSession(cfg).Run(TraceWorkload{Workload: "grep"})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.IPC, "ipc")
	}
}
