package stringfigure

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/memsys"
	"repro/internal/netsim"
	"repro/internal/scenario"
	"repro/internal/traffic"
)

// This file executes compiled scenario schedules (and the legacy
// SessionConfig.Gates path, which lowers onto the same machinery): the
// gateRig shared by gate-scheduled synthetic and trace-driven runs, plus
// the per-shape executors — runSyntheticScheduled (gates + rates),
// runSyntheticRated (rate modulation only, any design),
// runSyntheticRegen (the S2 rebuild baseline) and runTraceScheduled
// (gates under closed-loop trace replay).

// runToCycle advances the simulator to an absolute cycle with cooperative
// cancellation, in simChunk slices.
func runToCycle(ctx context.Context, sim *netsim.Sim, target int64) error {
	for sim.Cycle() < target {
		if err := ctx.Err(); err != nil {
			return err
		}
		step := target - sim.Cycle()
		if step > simChunk {
			step = simChunk
		}
		sim.Run(step)
	}
	return nil
}

// gateRig is the shared execution machinery of gate-scheduled runs: the
// validated schedule with the alive mask each phase passes through, the
// per-phase adjacency and its union (the simulator's physical link set),
// the link wake-latency charges a gate-off incurs, and the live apply/
// restore hooks. The caller holds the network's write lock for the rig's
// whole lifetime — reconfiguration is part of the run, so scheduled runs
// are exclusive.
type gateRig struct {
	n      *Network
	events []scenario.GateEvent
	// masks[i] is the alive mask after the first i events; adjs[i] its
	// adjacency. out is the union adjacency over every phase: all wires
	// any phase activates exist from cycle 0 (they are pre-provisioned
	// shortcuts or switched links); which ones carry traffic at any moment
	// is governed by the live routing tables.
	masks [][]bool
	adjs  [][][]int
	out   [][]int
	// start is the alive mask on entry (restored on exit); aliveNow tracks
	// the live mask as events apply, consulted dynamically by injection.
	start    []bool
	aliveNow []bool
	// wake charges links a gate-off switches on (ring healing) their
	// remaining wake-up latency, keyed by directed link.
	wakeCycles int64
	wake       map[[2]int]int64
	sim        *netsim.Sim
	rec        *scenarioRecorder
}

// newGateRig validates the normalized schedule against the live network
// (the caller holds the write lock) and precomputes every phase's
// adjacency. Validation matches the documented Gates contract: events
// must stay in range, never re-apply a node's current state, and never
// drop the network below two alive nodes.
func (n *Network) newGateRig(events []scenario.GateEvent, rec *scenarioRecorder) (*gateRig, error) {
	start := n.net.AliveSlice()
	cur := append([]bool(nil), start...)
	masks := [][]bool{start}
	aliveCount := len(start)
	for _, a := range start {
		if !a {
			aliveCount--
		}
	}
	for _, ev := range events {
		if ev.Cycle < 0 || ev.Node < 0 || ev.Node >= n.d.N {
			return nil, fmt.Errorf("%w: gate event %+v", ErrOutOfRange, ev)
		}
		if cur[ev.Node] == ev.On {
			return nil, fmt.Errorf("stringfigure: gate event at cycle %d: node %d already %s",
				ev.Cycle, ev.Node, map[bool]string{true: "on", false: "off"}[ev.On])
		}
		if !ev.On && aliveCount <= 2 {
			return nil, fmt.Errorf("stringfigure: gate event at cycle %d would drop below two alive nodes", ev.Cycle)
		}
		cur[ev.Node] = ev.On
		if ev.On {
			aliveCount++
		} else {
			aliveCount--
		}
		masks = append(masks, append([]bool(nil), cur...))
	}

	adjs := make([][][]int, len(masks))
	union := make([]map[int]bool, n.d.Routers)
	for i := range union {
		union[i] = make(map[int]bool)
	}
	for mi, m := range masks {
		adjs[mi] = n.net.AdjacencyFor(m)
		for u, nbrs := range adjs[mi] {
			for _, v := range nbrs {
				union[u][v] = true
			}
		}
	}
	out := make([][]int, n.d.Routers)
	for u, set := range union {
		nbrs := make([]int, 0, len(set))
		for v := range set {
			nbrs = append(nbrs, v)
		}
		sort.Ints(nbrs)
		out[u] = nbrs
	}
	return &gateRig{
		n:          n,
		events:     events,
		masks:      masks,
		adjs:       adjs,
		out:        out,
		start:      start,
		aliveNow:   start,
		wakeCycles: int64(n.net.Timing.LinkWakeNs / netsim.CycleNs),
		wake:       make(map[[2]int]int64),
		rec:        rec,
	}, nil
}

// escapeFor builds the escape function for an alive mask. It declines
// packets whose destination is gated off (returning a non-link): they are
// permanently undeliverable, and the simulator drops them as unroutable —
// letting them commit to the escape ring instead would have them
// circulate forever, eventually clogging the escape channels and wedging
// the whole network.
func (r *gateRig) escapeFor(alive []bool) func(cur, dst int) (int, int) {
	ring := netsim.RingEscape(r.n.d.SF, alive)
	return func(cur, dst int) (int, int) {
		if !alive[dst] {
			return -1, 0
		}
		return ring(cur, dst)
	}
}

// attach binds the rig to its simulator and installs the wake-aware link
// latency: flits routed onto a still waking link are charged its
// remaining wake time, which is the mechanism behind the post-gate-off
// latency transient the telemetry stream watches.
func (r *gateRig) attach(sim *netsim.Sim) {
	r.sim = sim
	sim.SetLinkLatency(func(u, v int) int {
		l := netsim.DefaultLinkLatency
		if until, ok := r.wake[[2]int{u, v}]; ok {
			if d := until - sim.Cycle(); d > 0 {
				l += int(d)
			}
		}
		return l
	})
}

// everAlive returns the AND of every phase's alive mask: the nodes that
// stay powered through the whole schedule (where closed-loop runs place
// memory pages and CPU sockets).
func (r *gateRig) everAlive() []bool {
	ever := append([]bool(nil), r.start...)
	for _, m := range r.masks {
		for i, a := range m {
			if !a {
				ever[i] = false
			}
		}
	}
	return ever
}

// apply executes event idx against the live network and simulator:
// gate the node, swap the escape routes to the new mask, and start the
// wake clock on links a gate-off switches on (ring healing) — a gate-on
// was already deferred past its links' wake by normalization.
func (r *gateRig) apply(idx int) error {
	ev := r.events[idx]
	var err error
	if ev.On {
		err = r.n.net.GateOn(ev.Node)
	} else {
		err = r.n.net.GateOff(ev.Node)
	}
	if err != nil {
		return err
	}
	r.aliveNow = r.n.net.AliveSlice()
	r.sim.SetEscapeRoute(r.escapeFor(r.aliveNow))
	if !ev.On {
		old := r.adjs[idx]
		for u, nbrs := range r.adjs[idx+1] {
			was := make(map[int]bool, len(old[u]))
			for _, v := range old[u] {
				was[v] = true
			}
			for _, v := range nbrs {
				if !was[v] {
					r.wake[[2]int{u, v}] = r.sim.Cycle() + r.wakeCycles
				}
			}
		}
	}
	kind := scenarioEvGateOff
	if ev.On {
		kind = scenarioEvGateOn
	}
	r.rec.add(ScenarioEvent{Cycle: ev.Cycle, Kind: kind, Node: ev.Node})
	return nil
}

// restore puts the starting alive mask back however the run ended: a
// session run never permanently reconfigures its network.
func (r *gateRig) restore() {
	now := r.n.net.AliveSlice()
	for i := range now {
		if now[i] != r.start[i] {
			r.n.net.SetAlive(r.start)
			return
		}
	}
}

// runSyntheticGated is runSynthetic for the legacy SessionConfig.Gates
// path: the raw events normalize under the Section VI epoch rules
// (scenario.Normalize — the same rules compiled scenarios already
// satisfy) and execute on the scheduled engine.
func (n *Network) runSyntheticGated(ctx context.Context, cfg SessionConfig, pat traffic.Pattern) (Result, error) {
	if n.net == nil {
		return Result{}, fmt.Errorf("%w: gate schedule on %s", ErrNotReconfigurable, n.d.Name)
	}
	total := cfg.Warmup + cfg.Measure
	t := n.net.Timing
	raw := make([]scenario.GateEvent, len(cfg.Gates))
	for i, ev := range cfg.Gates {
		raw[i] = scenario.GateEvent(ev)
	}
	events := scenario.Normalize(raw,
		int64(t.LinkWakeNs/netsim.CycleNs), int64(t.MinIntervalNs/netsim.CycleNs), total)
	return n.runSyntheticScheduled(ctx, cfg, pat, events, nil)
}

// runSyntheticScheduled drives one open-loop synthetic run under a
// compiled schedule: the run takes the network's write lock
// (reconfiguration is part of the run, so it is exclusive), builds the
// simulator over the union of the physical wires every phase activates,
// and applies each gate event to the live routing tables — and each rate
// event to the injection process — at its cycle. Packets already in
// flight route around a reconfiguration (or divert to the escape
// subnetwork, or drop as unroutable), which is exactly the transient the
// telemetry stream watches.
func (n *Network) runSyntheticScheduled(ctx context.Context, cfg SessionConfig, pat traffic.Pattern,
	gates []scenario.GateEvent, rates []scenario.RateEvent) (Result, error) {
	if n.net == nil {
		return Result{}, fmt.Errorf("%w: gate schedule on %s", ErrNotReconfigurable, n.d.Name)
	}
	total := cfg.Warmup + cfg.Measure

	n.mu.Lock()
	defer n.mu.Unlock()
	rec := &scenarioRecorder{}
	rig, err := n.newGateRig(gates, rec)
	if err != nil {
		return Result{}, err
	}

	simCfg := netsim.SFConfig(n.d.SF, cfg.Seed)
	simCfg.Out = rig.out
	simCfg.Alg = n.net.Router
	simCfg.VCPolicy = n.net.Router.VirtualChannel
	simCfg.EscapeRoute = rig.escapeFor(rig.start)
	if cfg.AdaptiveThreshold > 0 {
		simCfg.AdaptiveThreshold = cfg.AdaptiveThreshold
	}
	simCfg.ReferenceCore = cfg.ReferenceCore
	simCfg.PacketFlits = cfg.PacketFlits
	wireTelemetry(&simCfg, rec.wrap(cfg, 0), cfg.Rate, nil)
	sim, err := netsim.New(simCfg)
	if err != nil {
		return Result{}, err
	}

	// Injection liveness follows the schedule: gated nodes neither source
	// nor sink new traffic from the moment their event applies (aliveNow
	// is swapped by apply, so the lookup is dynamic).
	sim.SetPattern(cfg.Rate, n.hostedPattern(pat, func(v int) bool { return rig.aliveNow[v] }))
	rig.attach(sim)
	defer rig.restore()

	gi, ri := 0, 0
	phase := func(limit int64) error {
		for {
			next := int64(-1)
			if gi < len(gates) && gates[gi].Cycle < limit {
				next = gates[gi].Cycle
			}
			if ri < len(rates) && rates[ri].Cycle < limit && (next < 0 || rates[ri].Cycle < next) {
				next = rates[ri].Cycle
			}
			if next < 0 {
				return runToCycle(ctx, sim, limit)
			}
			if err := runToCycle(ctx, sim, next); err != nil {
				return err
			}
			for gi < len(gates) && gates[gi].Cycle == next {
				if err := rig.apply(gi); err != nil {
					return err
				}
				gi++
			}
			for ri < len(rates) && rates[ri].Cycle == next {
				rate := cfg.Rate * rates[ri].Scale
				sim.SetRate(rate)
				rec.add(ScenarioEvent{Cycle: next, Kind: scenarioEvRate, Rate: rate})
				ri++
			}
		}
	}
	if err := phase(cfg.Warmup); err != nil {
		return Result{}, err
	}
	sim.ResetStats()
	if err := phase(total); err != nil {
		return Result{}, err
	}
	return n.syntheticResult(sim.Results(), cfg.Rate), nil
}

// runSyntheticRated drives one open-loop synthetic run whose schedule
// only modulates the injection rate (diurnal/bursty scenarios): no
// reconfiguration happens, so the run works on every design and takes
// only the read lock, like a plain synthetic run.
func (n *Network) runSyntheticRated(ctx context.Context, cfg SessionConfig, pat traffic.Pattern,
	rates []scenario.RateEvent) (Result, error) {
	total := cfg.Warmup + cfg.Measure
	n.mu.RLock()
	defer n.mu.RUnlock()
	rec := &scenarioRecorder{}
	simCfg := n.snapshotCfg(cfg)
	simCfg.PacketFlits = cfg.PacketFlits
	wireTelemetry(&simCfg, rec.wrap(cfg, 0), cfg.Rate, nil)
	sim, err := netsim.New(simCfg)
	if err != nil {
		return Result{}, err
	}
	var alive []bool
	if n.net != nil {
		alive = n.net.AliveSlice()
	}
	sim.SetPattern(cfg.Rate, n.hostedPattern(pat, func(v int) bool {
		return alive == nil || alive[v]
	}))
	ri := 0
	phase := func(limit int64) error {
		for ri < len(rates) && rates[ri].Cycle < limit {
			if err := runToCycle(ctx, sim, rates[ri].Cycle); err != nil {
				return err
			}
			rate := cfg.Rate * rates[ri].Scale
			sim.SetRate(rate)
			rec.add(ScenarioEvent{Cycle: rates[ri].Cycle, Kind: scenarioEvRate, Rate: rate})
			ri++
		}
		return runToCycle(ctx, sim, limit)
	}
	if err := phase(cfg.Warmup); err != nil {
		return Result{}, err
	}
	sim.ResetStats()
	if err := phase(total); err != nil {
		return Result{}, err
	}
	return n.syntheticResult(sim.Results(), cfg.Rate), nil
}

// runSyntheticRegen executes the ScenarioRegenS2 baseline: phase A runs
// the full-scale S2 topology to the regeneration cycle; the topology is
// then regenerated at Drop fewer nodes (a fresh seeded build — S2 cannot
// gate nodes, so down-scaling means rebuilding), and phase B runs the
// remainder on the new network with injection silenced through the
// rebuild outage. The measured window stitches both phases together, so
// the regeneration's outage and warm-cache loss land in the same metrics
// a String Figure storm is measured by.
func (n *Network) runSyntheticRegen(ctx context.Context, cfg SessionConfig, patName string,
	pat traffic.Pattern, rg *scenario.Regen) (Result, error) {
	if n.d.Name != "s2" {
		return Result{}, fmt.Errorf("%w: regen-s2 on design %q (the regeneration baseline rebuilds an s2 topology; reconfigurable designs gate nodes in place instead)",
			ErrScenario, n.d.Name)
	}
	if patName == "" {
		return Result{}, fmt.Errorf("%w: regen-s2 needs a named synthetic pattern (traffic re-derives on the regenerated topology)", ErrScenario)
	}
	total := cfg.Warmup + cfg.Measure
	R := rg.Cycle
	// Phase A is measured only when the regeneration lands after warm-up;
	// an earlier regeneration leaves the whole measured window to phase B.
	measuredA := R > cfg.Warmup
	rec := &scenarioRecorder{}

	resA, err := func() (netsim.Results, error) {
		n.mu.RLock()
		defer n.mu.RUnlock()
		simCfg := n.snapshotCfg(cfg)
		simCfg.PacketFlits = cfg.PacketFlits
		wireTelemetry(&simCfg, rec.wrap(cfg, 0), cfg.Rate, nil)
		sim, err := netsim.New(simCfg)
		if err != nil {
			return netsim.Results{}, err
		}
		sim.SetPattern(cfg.Rate, n.hostedPattern(pat, func(int) bool { return true }))
		if measuredA {
			if err := runToCycle(ctx, sim, cfg.Warmup); err != nil {
				return netsim.Results{}, err
			}
			sim.ResetStats()
		}
		if err := runToCycle(ctx, sim, R); err != nil {
			return netsim.Results{}, err
		}
		return sim.Results(), nil
	}()
	if err != nil {
		return Result{}, err
	}

	// Regenerate: same design family and ports, Drop fewer nodes, a seed
	// derived deterministically from the original build.
	sp := n.spec()
	sp.Nodes -= rg.Drop
	sp.Seed += 1 + int64(rg.Drop)
	sp.Alive = nil
	n2, err := sp.build()
	if err != nil {
		return Result{}, fmt.Errorf("%w: regenerating s2 at %d nodes: %v", ErrScenario, sp.Nodes, err)
	}
	patB, err := traffic.NewPattern(patName, n2.Nodes())
	if err != nil {
		return Result{}, fmt.Errorf("%w: %v", ErrUnknownPattern, err)
	}
	rec.add(ScenarioEvent{Cycle: R, Kind: scenarioEvRegen, Node: n2.Nodes()})

	bTotal := total - R
	outEnd := rg.Outage
	if outEnd > bTotal {
		outEnd = bTotal
	}
	resB, err := func() (netsim.Results, error) {
		n2.mu.RLock()
		defer n2.mu.RUnlock()
		simCfg := n2.snapshotCfg(cfg)
		simCfg.PacketFlits = cfg.PacketFlits
		// Phase B's simulator clock restarts at zero; the recorder offset
		// restores absolute run cycles on its snapshots.
		wireTelemetry(&simCfg, rec.wrap(cfg, R), cfg.Rate, nil)
		sim, err := netsim.New(simCfg)
		if err != nil {
			return netsim.Results{}, err
		}
		// Injection stays silenced through the rebuild outage.
		sim.SetPattern(0, n2.hostedPattern(patB, func(int) bool { return true }))
		type act struct {
			cycle int64
			f     func()
		}
		var acts []act
		if !measuredA && cfg.Warmup-R > 0 {
			acts = append(acts, act{cfg.Warmup - R, sim.ResetStats})
		}
		if outEnd < bTotal {
			acts = append(acts, act{outEnd, func() {
				sim.SetRate(cfg.Rate)
				rec.add(ScenarioEvent{Cycle: R + outEnd, Kind: scenarioEvRate, Rate: cfg.Rate})
			}})
		}
		sort.SliceStable(acts, func(i, j int) bool { return acts[i].cycle < acts[j].cycle })
		for _, a := range acts {
			if err := runToCycle(ctx, sim, a.cycle); err != nil {
				return netsim.Results{}, err
			}
			a.f()
		}
		if err := runToCycle(ctx, sim, bTotal); err != nil {
			return netsim.Results{}, err
		}
		return sim.Results(), nil
	}()
	if err != nil {
		return Result{}, err
	}

	res := resB
	if measuredA {
		res = mergeNetResults(resA, resB)
	}
	return n.syntheticResult(res, cfg.Rate), nil
}

// mergeNetResults stitches two measured windows into one: counters and
// latency aggregates sum, histograms merge, occupancy comes from the
// later window, and the node count stays phase A's (the per-node
// throughput normalization keeps the original machine size as its
// denominator, charging the regeneration's capacity loss to throughput).
func mergeNetResults(a, b netsim.Results) netsim.Results {
	m := a
	m.Cycles += b.Cycles
	m.Injected += b.Injected
	m.Delivered += b.Delivered
	m.Dropped += b.Dropped
	m.Escaped += b.Escaped
	m.FlitsDelivered += b.FlitsDelivered
	m.FlitHops += b.FlitHops
	m.InFlight = b.InFlight
	m.LatencySum += b.LatencySum
	m.LatencyHist.Merge(&b.LatencyHist)
	m.HopHist.Merge(&b.HopHist)
	if m.MinInjectLatency < 0 || (b.MinInjectLatency >= 0 && b.MinInjectLatency < m.MinInjectLatency) {
		m.MinInjectLatency = b.MinInjectLatency
	}
	m.Deadlocked = m.Deadlocked || b.Deadlocked
	return m
}

// traceSliceCycles is the co-simulation slice between event checks on
// scheduled trace runs, matching the memsys completion-poll granularity.
const traceSliceCycles = 32

// traceSchedule resolves a closed-loop trace run's gate schedule from
// Scenario or the legacy Gates list (already normalized under the epoch
// rules). Rate modulation and regeneration have no closed-loop meaning —
// offered load emerges from the replay — so those specs reject with
// ErrScenario.
func (n *Network) traceSchedule(cfg SessionConfig) ([]scenario.GateEvent, error) {
	if len(cfg.Scenario) > 0 {
		sch, err := n.compileScenario(cfg, cfg.MaxCycles)
		if err != nil {
			return nil, err
		}
		if len(sch.Rates) > 0 || sch.Regen != nil {
			return nil, fmt.Errorf("%w: rate modulation and regeneration need an open-loop synthetic workload (trace replay is closed-loop)", ErrScenario)
		}
		return sch.Gates, nil
	}
	if len(cfg.Gates) == 0 {
		return nil, nil
	}
	if n.net == nil {
		return nil, fmt.Errorf("%w: gate schedule on %s", ErrNotReconfigurable, n.d.Name)
	}
	t := n.net.Timing
	raw := make([]scenario.GateEvent, len(cfg.Gates))
	for i, ev := range cfg.Gates {
		raw[i] = scenario.GateEvent(ev)
	}
	return scenario.Normalize(raw,
		int64(t.LinkWakeNs/netsim.CycleNs), int64(t.MinIntervalNs/netsim.CycleNs), cfg.MaxCycles), nil
}

// runTraceScheduled drives one closed-loop trace run under a gate
// schedule: memory pages and CPU sockets live on the nodes that stay
// powered through every phase (gating never strands a socket or a page),
// the network simulates over the union link set, and gate events apply
// between co-simulation slices at their scheduled cycles — crossing
// traffic reroutes around the gated region while the replay keeps
// running, which is the closed-loop transient the scenario suite
// measures. Like all scheduled runs it is exclusive (write lock) and
// restores the starting mask on exit.
func (n *Network) runTraceScheduled(ctx context.Context, cfg SessionConfig, workload string,
	events []scenario.GateEvent) (Result, error) {
	if n.net == nil {
		return Result{}, fmt.Errorf("%w: gate schedule on %s", ErrNotReconfigurable, n.d.Name)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	rec := &scenarioRecorder{}
	rig, err := n.newGateRig(events, rec)
	if err != nil {
		return Result{}, err
	}
	parts, err := n.buildTraceParts(ctx, cfg, workload, rig.everAlive())
	if err != nil {
		return Result{}, err
	}

	netCfg := netsim.SFConfig(n.d.SF, cfg.Seed)
	netCfg.Out = rig.out
	netCfg.Alg = n.net.Router
	netCfg.VCPolicy = n.net.Router.VirtualChannel
	netCfg.EscapeRoute = rig.escapeFor(rig.start)
	if cfg.AdaptiveThreshold > 0 {
		netCfg.AdaptiveThreshold = cfg.AdaptiveThreshold
	}
	netCfg.ReferenceCore = cfg.ReferenceCore
	var sys *memsys.System
	wireTelemetry(&netCfg, rec.wrap(cfg, 0), 0, func() int {
		if sys == nil {
			return 0
		}
		return sys.OutstandingReads()
	})
	sys, err = memsys.Build(netCfg, parts.pool, parts.cpuNodes, cfg.Window, parts.traces)
	if err != nil {
		return Result{}, err
	}
	sys.Ports = n.d.Ports
	sim := sys.Sim()
	rig.attach(sim)
	defer rig.restore()

	pos := 0
	for !sys.Done() {
		if err := ctx.Err(); err != nil {
			return Result{}, err
		}
		now := sim.Cycle()
		if now >= cfg.MaxCycles {
			return Result{}, fmt.Errorf("stringfigure: %s trace run did not finish in %d cycles",
				workload, now)
		}
		target := cfg.MaxCycles
		if pos < len(events) && events[pos].Cycle < target {
			target = events[pos].Cycle
		}
		if target > now {
			step := target - now
			if step > traceSliceCycles {
				step = traceSliceCycles
			}
			sys.Run(step)
			if sys.NetResults().Deadlocked {
				return Result{}, fmt.Errorf("memsys: network deadlocked")
			}
		}
		for pos < len(events) && events[pos].Cycle <= sim.Cycle() {
			if err := rig.apply(pos); err != nil {
				return Result{}, err
			}
			pos++
		}
	}
	return traceResult(sys), nil
}
