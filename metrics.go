package stringfigure

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/metrics"
)

// MetricsServer exposes live simulation telemetry as a Prometheus-text
// /metrics endpoint, with no external dependencies. It is fed from the
// same TelemetrySnapshot stream the rest of the telemetry layer uses:
// attach it to any session or sweep with SessionConfig.WithMetrics (it
// composes with an existing WithTelemetry sink), or let a worker process
// feed it via WorkerOptions.Metrics. Cluster-side worker liveness is read
// at scrape time from an attached Cluster (WatchCluster), so the endpoint
// also answers "is the fleet alive" during a long distributed sweep.
//
// Exposed families (all prefixed stringfigure_):
//
//	snapshots_total                  interval snapshots observed
//	injected_total, delivered_total  flits, summed over intervals
//	escaped_total, dropped_total     escape diversions / unroutable drops
//	in_flight                        network flit occupancy (last interval)
//	interval_latency_ns              histogram of per-interval avg latency
//	flow_delivered_total{src,dst}    per-flow-bucket deliveries (FlowBuckets runs)
//	flow_latency_ns{src,dst}         per-flow-bucket avg latency, last interval
//	link_flits_total{from,to}        per-link flits forwarded (heatmap source)
//	router_flits_total{node}         per-router crossbar flits forwarded
//	workers                          connected cluster workers
//	worker_active{worker=...}        per-worker in-flight sweep points
//	worker_capacity{worker=...}      per-worker concurrent-session slots
//	worker_completed{worker=...}     per-worker finished sweep points
//	worker_report_age_seconds{...}   seconds since the worker last reported
//
// Counters aggregate across every run that feeds the server; scrape-side
// rate() turns them into live throughput. All methods are safe for
// concurrent use.
type MetricsServer struct {
	reg *metrics.Registry
	srv *metrics.Server

	snapshots *metrics.Counter
	injected  *metrics.Counter
	delivered *metrics.Counter
	escaped   *metrics.Counter
	dropped   *metrics.Counter
	inFlight  *metrics.Gauge
	latency   *metrics.Histogram

	// Flow-attribution series, populated only when snapshots carry flow
	// samples (SessionConfig.FlowBuckets > 0). Cumulative counters keyed by
	// bucket pair / link / router; rendered as labeled samples at scrape.
	mu      sync.Mutex
	flows   map[[2]int]*flowStat
	links   map[[2]int]int64
	routers map[int]int64
}

// flowStat is one flow bucket pair's exported state: cumulative deliveries
// plus the latest interval's average latency.
type flowStat struct {
	delivered int64
	latencyNs float64
}

// MetricsOption configures ServeMetrics.
type MetricsOption func(*metricsOptions)

type metricsOptions struct {
	latencyBuckets []int
}

// defaultLatencyBuckets are the interval-latency histogram bounds used
// when WithTelemetryBuckets is not given: doubling from 25 ns to 12.8 us,
// bracketing the paper's zero-load-to-saturation latency range.
var defaultLatencyBuckets = []int{25, 50, 100, 200, 400, 800, 1600, 3200, 6400, 12800}

// WithTelemetryBuckets overrides the upper bounds (in nanoseconds, sorted
// ascending; +Inf is implicit) of the stringfigure_interval_latency_ns
// histogram. Use it when a deployment's latency range sits outside the
// defaults — e.g. coarse buckets for saturated-network soak tests, fine
// ones for zero-load studies. Empty or nil keeps the defaults.
func WithTelemetryBuckets(boundsNs []int) MetricsOption {
	return func(o *metricsOptions) {
		if len(boundsNs) > 0 {
			o.latencyBuckets = append([]int(nil), boundsNs...)
		}
	}
}

// ServeMetrics starts a Prometheus-text /metrics HTTP endpoint on addr
// ("host:port"; ":0" picks a free port, read it back with Addr). The
// returned server reports nothing until telemetry is routed into it —
// chain it into a session or sweep config with SessionConfig.WithMetrics,
// attach a cluster with WatchCluster, or hand it to a worker via
// WorkerOptions.Metrics. Close it when done.
func ServeMetrics(addr string, opts ...MetricsOption) (*MetricsServer, error) {
	o := metricsOptions{latencyBuckets: defaultLatencyBuckets}
	for _, opt := range opts {
		opt(&o)
	}
	reg := metrics.NewRegistry()
	m := &MetricsServer{
		reg: reg,
		snapshots: reg.Counter("stringfigure_snapshots_total",
			"Interval telemetry snapshots observed."),
		injected: reg.Counter("stringfigure_injected_total",
			"Flits injected, summed over observed intervals."),
		delivered: reg.Counter("stringfigure_delivered_total",
			"Flits delivered, summed over observed intervals."),
		escaped: reg.Counter("stringfigure_escaped_total",
			"Packets diverted to the escape subnetwork."),
		dropped: reg.Counter("stringfigure_dropped_total",
			"Packets dropped as unroutable during reconfiguration windows."),
		inFlight: reg.Gauge("stringfigure_in_flight",
			"Network flit occupancy at the last observed interval."),
		latency: reg.Histogram("stringfigure_interval_latency_ns",
			"Per-interval average packet latency in nanoseconds.",
			o.latencyBuckets),
		flows:   make(map[[2]int]*flowStat),
		links:   make(map[[2]int]int64),
		routers: make(map[int]int64),
	}
	reg.GaugeFunc("stringfigure_flow_delivered_total",
		"Packets delivered per (src bucket, dst bucket) flow, summed over intervals.",
		func() []metrics.Sample {
			return m.flowSamples(func(fs *flowStat) float64 { return float64(fs.delivered) },
				"stringfigure_flow_delivered_total")
		})
	reg.GaugeFunc("stringfigure_flow_latency_ns",
		"Average packet latency per flow over the last observed interval.",
		func() []metrics.Sample {
			return m.flowSamples(func(fs *flowStat) float64 { return fs.latencyNs },
				"stringfigure_flow_latency_ns")
		})
	reg.GaugeFunc("stringfigure_link_flits_total",
		"Flits forwarded per directed link, summed over intervals.",
		m.linkSamples)
	reg.GaugeFunc("stringfigure_router_flits_total",
		"Flits forwarded through each router's crossbar, summed over intervals.",
		m.routerSamples)
	srv, err := metrics.Serve(addr, reg)
	if err != nil {
		return nil, fmt.Errorf("stringfigure: metrics listen: %w", err)
	}
	m.srv = srv
	return m, nil
}

// Addr returns the endpoint's listen address (scrape http://ADDR/metrics).
func (m *MetricsServer) Addr() string { return m.srv.Addr() }

// Close stops the HTTP endpoint. Telemetry sinks still pointing at the
// server keep updating its registry harmlessly.
func (m *MetricsServer) Close() error { return m.srv.Close() }

// Observe folds one interval snapshot into the exported counters. It is a
// valid WithTelemetry sink (safe for concurrent use) and is what
// SessionConfig.WithMetrics chains in; call it directly when managing
// sinks by hand.
func (m *MetricsServer) Observe(t TelemetrySnapshot) {
	m.snapshots.Add(1)
	m.injected.Add(float64(t.Injected))
	m.delivered.Add(float64(t.Delivered))
	m.escaped.Add(float64(t.Escaped))
	m.dropped.Add(float64(t.Dropped))
	m.inFlight.Set(float64(t.InFlight))
	if t.Delivered > 0 {
		m.latency.Observe(t.AvgLatencyNs)
	}
	if len(t.Flows) == 0 && len(t.Links) == 0 && len(t.Routers) == 0 {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, f := range t.Flows {
		k := [2]int{f.SrcBucket, f.DstBucket}
		fs := m.flows[k]
		if fs == nil {
			fs = &flowStat{}
			m.flows[k] = fs
		}
		fs.delivered += f.Delivered
		fs.latencyNs = f.AvgLatencyNs
	}
	for _, l := range t.Links {
		m.links[[2]int{l.From, l.To}] += l.Flits
	}
	for _, r := range t.Routers {
		m.routers[r.Node] += r.Flits
	}
}

// flowSamples renders the flow map as labeled samples in bucket order.
func (m *MetricsServer) flowSamples(v func(*flowStat) float64, name string) []metrics.Sample {
	m.mu.Lock()
	defer m.mu.Unlock()
	keys := make([][2]int, 0, len(m.flows))
	for k := range m.flows {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	out := make([]metrics.Sample, 0, len(keys))
	for _, k := range keys {
		out = append(out, metrics.Sample{
			Name:  fmt.Sprintf("%s{src=\"%d\",dst=\"%d\"}", name, k[0], k[1]),
			Value: v(m.flows[k]),
		})
	}
	return out
}

// linkSamples renders the link utilization map in (from, to) order.
func (m *MetricsServer) linkSamples() []metrics.Sample {
	m.mu.Lock()
	defer m.mu.Unlock()
	keys := make([][2]int, 0, len(m.links))
	for k := range m.links {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	out := make([]metrics.Sample, 0, len(keys))
	for _, k := range keys {
		out = append(out, metrics.Sample{
			Name:  fmt.Sprintf("stringfigure_link_flits_total{from=\"%d\",to=\"%d\"}", k[0], k[1]),
			Value: float64(m.links[k]),
		})
	}
	return out
}

// routerSamples renders the router utilization map in node order.
func (m *MetricsServer) routerSamples() []metrics.Sample {
	m.mu.Lock()
	defer m.mu.Unlock()
	keys := make([]int, 0, len(m.routers))
	for k := range m.routers {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	out := make([]metrics.Sample, 0, len(keys))
	for _, k := range keys {
		out = append(out, metrics.Sample{
			Name:  fmt.Sprintf("stringfigure_router_flits_total{node=\"%d\"}", k),
			Value: float64(m.routers[k]),
		})
	}
	return out
}

// WatchCluster exposes the cluster's per-worker liveness at scrape time:
// worker count, per-worker capacity, in-flight and completed points, and
// the age of each worker's last progress report. The cluster is polled on
// every scrape (Cluster.Progress), so no goroutine runs between scrapes.
// Watching a second cluster replaces the first.
func (m *MetricsServer) WatchCluster(c *Cluster) {
	m.reg.GaugeFunc("stringfigure_workers",
		"Connected distributed-sweep workers.",
		func() []metrics.Sample {
			return []metrics.Sample{{Name: "stringfigure_workers", Value: float64(c.Workers())}}
		})
	perWorker := func(name string, v func(WorkerProgress) float64) func() []metrics.Sample {
		return func() []metrics.Sample {
			ps := c.Progress()
			out := make([]metrics.Sample, 0, len(ps))
			for _, p := range ps {
				out = append(out, metrics.Sample{
					Name:  fmt.Sprintf("%s{worker=\"%d\"}", name, p.Worker),
					Value: v(p),
				})
			}
			return out
		}
	}
	m.reg.GaugeFunc("stringfigure_worker_capacity",
		"Per-worker concurrent-session slots.",
		perWorker("stringfigure_worker_capacity",
			func(p WorkerProgress) float64 { return float64(p.Capacity) }))
	m.reg.GaugeFunc("stringfigure_worker_active",
		"Per-worker sweep points running right now.",
		perWorker("stringfigure_worker_active",
			func(p WorkerProgress) float64 { return float64(p.Active) }))
	m.reg.GaugeFunc("stringfigure_worker_completed",
		"Per-worker sweep points finished since the worker connected.",
		perWorker("stringfigure_worker_completed",
			func(p WorkerProgress) float64 { return float64(p.Completed) }))
	m.reg.GaugeFunc("stringfigure_worker_report_age_seconds",
		"Seconds since each worker's last progress report (-1 before the first).",
		perWorker("stringfigure_worker_report_age_seconds",
			func(p WorkerProgress) float64 {
				if p.LastReport.IsZero() {
					return -1
				}
				return time.Since(p.LastReport).Seconds()
			}))
}

// ServeMetrics starts a /metrics endpoint on addr pre-wired to this
// cluster's worker liveness (WatchCluster). Route simulation counters into
// it by chaining the returned server into sweep configs with
// SessionConfig.WithMetrics — with telemetry-enabled distributed sweeps,
// remote workers' forwarded snapshots land in the same counters.
func (c *Cluster) ServeMetrics(addr string, opts ...MetricsOption) (*MetricsServer, error) {
	m, err := ServeMetrics(addr, opts...)
	if err != nil {
		return nil, err
	}
	m.WatchCluster(c)
	return m, nil
}

// WithMetrics returns a copy of the config that additionally feeds every
// interval snapshot into the metrics server, preserving any sink already
// attached with WithTelemetry (the existing sink runs first). Snapshot
// cadence follows TelemetryEvery exactly as for any other sink, and
// attaching metrics never perturbs simulation results.
func (c SessionConfig) WithMetrics(m *MetricsServer) SessionConfig {
	prev := c.onTelemetry
	c.onTelemetry = func(t TelemetrySnapshot) {
		if prev != nil {
			prev(t)
		}
		m.Observe(t)
	}
	return c
}
